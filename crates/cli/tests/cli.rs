//! End-to-end tests of the `nvbitfi` binary: the upstream-script workflow
//! of profile-file → select → params-file → inject, driven through the CLI.

use std::path::PathBuf;
use std::process::{Command, Output};

fn nvbitfi(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nvbitfi")).args(args).output().expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).to_string()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nvbitfi-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn no_args_prints_usage() {
    let o = nvbitfi(&[]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("usage: nvbitfi"));
}

#[test]
fn unknown_command_fails() {
    let o = nvbitfi(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("unknown command"));
}

#[test]
fn list_shows_all_programs() {
    let o = nvbitfi(&["list"]);
    assert!(o.status.success());
    let out = stdout(&o);
    for name in ["303.ostencil", "354.cg", "370.bt"] {
        assert!(out.contains(name), "{out}");
    }
}

#[test]
fn unknown_program_fails_cleanly() {
    let o = nvbitfi(&["profile", "999.nope", "--scale", "test"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("unknown program"));
}

#[test]
fn profile_select_inject_pipeline() {
    // Figure 1 as three CLI invocations with real files in between.
    let profile_path = tmp("profile.txt");
    let params_path = tmp("params.txt");

    let o = nvbitfi(&[
        "profile",
        "314.omriq",
        "--scale",
        "test",
        "--mode",
        "exact",
        "--out",
        profile_path.to_str().expect("utf8"),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let text = std::fs::read_to_string(&profile_path).expect("profile written");
    assert!(text.starts_with("# nvbitfi profile mode=exact"));
    assert!(text.contains("mriq_phimag:0:"));

    let o = nvbitfi(&[
        "select",
        "314.omriq",
        "--profile",
        profile_path.to_str().expect("utf8"),
        "--group",
        "8",
        "--bitflip",
        "1",
        "--seed",
        "99",
        "--out",
        params_path.to_str().expect("utf8"),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let params = std::fs::read_to_string(&params_path).expect("params written");
    assert_eq!(params.lines().count(), 7, "Table II parameter file: {params}");
    assert_eq!(params.lines().next(), Some("8"), "G_GP id");

    let o = nvbitfi(&[
        "inject",
        "314.omriq",
        "--scale",
        "test",
        "--params",
        params_path.to_str().expect("utf8"),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let out = stdout(&o);
    assert!(out.contains("injected: true"), "{out}");
    assert!(out.contains("outcome:"), "{out}");

    let _ = std::fs::remove_file(profile_path);
    let _ = std::fs::remove_file(params_path);
}

#[test]
fn campaign_runs_and_reports_ci() {
    let o =
        nvbitfi(&["campaign", "314.omriq", "--scale", "test", "--injections", "10", "--seed", "3"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let out = stdout(&o);
    assert!(out.contains("10 injections"), "{out}");
    assert!(out.contains("confidence margin"), "{out}");
}

#[test]
fn permanent_injection_reports_activations() {
    let o = nvbitfi(&[
        "pf",
        "314.omriq",
        "--scale",
        "test",
        "--opcode",
        "MUFU",
        "--lane",
        "2",
        "--mask",
        "0x1",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let out = stdout(&o);
    assert!(out.contains("activations:"), "{out}");
    assert!(out.contains("outcome:"), "{out}");
}

#[test]
fn disasm_prints_sass() {
    let o = nvbitfi(&["disasm", "314.omriq", "--scale", "test"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let out = stdout(&o);
    assert!(out.contains(".module"), "{out}");
    assert!(out.contains("MUFU"), "{out}");
    assert!(out.contains("EXIT"), "{out}");
}

#[test]
fn split_campaign_via_list_and_log() {
    // select --count N → run-list --log → results log parses and tallies.
    let profile_path = tmp("split-profile.txt");
    let list_path = tmp("split-list.txt");
    let log_path = tmp("split-log.txt");

    let o = nvbitfi(&[
        "profile",
        "314.omriq",
        "--scale",
        "test",
        "--out",
        profile_path.to_str().expect("utf8"),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));

    let o = nvbitfi(&[
        "select",
        "314.omriq",
        "--profile",
        profile_path.to_str().expect("utf8"),
        "--count",
        "8",
        "--seed",
        "17",
        "--out",
        list_path.to_str().expect("utf8"),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let list = std::fs::read_to_string(&list_path).expect("list");
    assert_eq!(list.lines().filter(|l| !l.starts_with('#')).count(), 8);

    let o = nvbitfi(&[
        "run-list",
        "314.omriq",
        "--scale",
        "test",
        "--list",
        list_path.to_str().expect("utf8"),
        "--log",
        log_path.to_str().expect("utf8"),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let log = std::fs::read_to_string(&log_path).expect("log");
    let rows = log.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(rows, 8, "one result row per fault:\n{log}");
    assert!(stdout(&o).contains("8 classified runs"), "{}", stdout(&o));
    assert!(log.starts_with("# nvbitfi results log v5"), "journal header:\n{log}");

    for p in [profile_path, list_path, log_path] {
        let _ = std::fs::remove_file(p);
    }
}

/// The deterministic part of a campaign's outcome report: the tally from
/// "SDC" up to "potential DUEs" (timings vary run to run, counts must not).
fn counts_of(out: &str) -> String {
    let start = out.find("SDC ").expect("counts present");
    let end = out[start..].find("potential DUEs").expect("counts end present");
    out[start..start + end].to_string()
}

#[test]
fn campaign_journal_resumes_after_crash() {
    let log_path = tmp("resume-log.txt");
    let log = log_path.to_str().expect("utf8");

    // Full campaign with journaling plus the robustness flags.
    let o = nvbitfi(&[
        "campaign",
        "314.omriq",
        "--scale",
        "test",
        "--injections",
        "6",
        "--seed",
        "7",
        "--max-retries",
        "2",
        "--deadline-ms",
        "10000",
        "--log",
        log,
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let full = stdout(&o);
    assert!(full.contains("0 infra errors"), "{full}");
    let baseline = counts_of(&full);

    let text = std::fs::read_to_string(&log_path).expect("log");
    assert!(text.starts_with("# nvbitfi results log v5 program=314.omriq"), "{text}");
    for meta in [
        "# meta scale=test",
        "# meta seed=7",
        "# meta injections=6",
        "# meta max_retries=2",
        "# meta deadline_ms=10000",
    ] {
        assert!(text.contains(meta), "missing `{meta}`:\n{text}");
    }
    let data: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
    assert_eq!(data.len(), 6, "{text}");

    // Simulate a crash mid-append: three complete rows plus a torn tail.
    let header: String =
        text.lines().filter(|l| l.starts_with('#')).map(|l| format!("{l}\n")).collect();
    let crashed =
        format!("{header}{}\n{}\n{}\n{}", data[0], data[1], data[2], &data[3][..data[3].len() / 2]);
    std::fs::write(&log_path, crashed).expect("truncate");

    let o = nvbitfi(&["resume", log]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let out = stdout(&o);
    assert!(out.contains("torn final line"), "{out}");
    assert!(out.contains("3 of 6 verdicts reloaded"), "{out}");
    assert!(out.contains("3 fresh, 3 resumed"), "{out}");
    assert_eq!(counts_of(&out), baseline, "resume reproduces the uninterrupted tally\n{out}");
    let text = std::fs::read_to_string(&log_path).expect("log");
    assert_eq!(
        text.lines().filter(|l| !l.starts_with('#')).count(),
        6,
        "journal is duplicate-free after resume:\n{text}"
    );

    // Resuming an already-complete log reloads everything, runs nothing.
    let o = nvbitfi(&["resume", log]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let out = stdout(&o);
    assert!(out.contains("6 of 6 verdicts reloaded"), "{out}");
    assert!(out.contains("0 fresh, 6 resumed"), "{out}");
    assert_eq!(counts_of(&out), baseline, "{out}");

    let _ = std::fs::remove_file(log_path);
}

#[test]
fn all_infra_campaign_reports_without_margin() {
    // --deadline-ms 0 makes every run overrun: no classified runs at all.
    // The report must degrade gracefully instead of panicking on an empty
    // confidence-margin denominator.
    let o = nvbitfi(&[
        "campaign",
        "314.omriq",
        "--scale",
        "test",
        "--injections",
        "4",
        "--seed",
        "7",
        "--deadline-ms",
        "0",
        "--max-retries",
        "0",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let out = stdout(&o);
    assert!(out.contains("4 infra errors"), "{out}");
    assert!(out.contains("n/a (no classified runs)"), "{out}");
}

#[test]
fn resume_rejects_logs_without_meta() {
    let log_path = tmp("meta-less.txt");
    std::fs::write(&log_path, "# nvbitfi results log v3 program=314.omriq\n").expect("write");
    let o = nvbitfi(&["resume", log_path.to_str().expect("utf8")]);
    assert!(!o.status.success());
    assert!(
        String::from_utf8_lossy(&o.stderr).contains("meta"),
        "{}",
        String::from_utf8_lossy(&o.stderr)
    );
    let _ = std::fs::remove_file(log_path);
}

#[test]
fn disasm_edit_assemble_roundtrip() {
    // Dump a program's SASS, reassemble it to a binary, and disassemble the
    // binary again: the listings must agree (the nvdisasm↔assembler loop).
    let listing_path = tmp("listing.sass");
    let module_path = tmp("module.bin");

    let o = nvbitfi(&["disasm", "314.omriq", "--scale", "test"]);
    assert!(o.status.success());
    std::fs::write(&listing_path, stdout(&o)).expect("write listing");

    let o = nvbitfi(&[
        "assemble",
        "--in",
        listing_path.to_str().expect("utf8"),
        "--out",
        module_path.to_str().expect("utf8"),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(stdout(&o).contains("2 kernels"), "{}", stdout(&o));

    let o = nvbitfi(&["disasm-bin", "--in", module_path.to_str().expect("utf8")]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let second = stdout(&o);
    let first = std::fs::read_to_string(&listing_path).expect("listing");
    assert_eq!(first.trim(), second.trim(), "listings agree after reassembly");

    for p in [listing_path, module_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn trace_runs_the_nvbit_example_tools() {
    let o = nvbitfi(&["trace", "314.omriq", "--scale", "test", "--top", "3", "--mem", "5"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let out = stdout(&o);
    assert!(out.contains("instr_count:"), "{out}");
    assert!(out.contains("opcode_hist"), "{out}");
    assert!(out.contains("mem_trace"), "{out}");
    assert!(out.contains("MUFU"), "{out}");
}
