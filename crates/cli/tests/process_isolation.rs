//! Process-isolation robustness, end to end against the real `nvbitfi`
//! binary: a SIGKILLed worker costs a retry (not the campaign), exhausted
//! retries record `INFRA:died`, and `resume` reconstructs the isolation
//! mode from the journal and re-runs exactly the infra rows.

use nvbitfi::outcome::InfraKind;
use nvbitfi::{
    run_transient_campaign, CampaignConfig, FaultHook, IsolationMode, OutcomeClass,
    ProcessIsolation, ProfilingMode,
};
use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::Duration;
use workloads::Scale;

const PROGRAM: &str = "314.omriq";

fn worker_command() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_nvbitfi").to_string(), "worker".to_string()]
}

fn cfg(isolation: IsolationMode) -> CampaignConfig {
    CampaignConfig {
        injections: 6,
        seed: 7,
        profiling: ProfilingMode::Exact,
        workers: 2,
        max_retries: 1,
        retry_backoff: Duration::ZERO,
        isolation,
        ..CampaignConfig::default()
    }
}

fn run(isolation: IsolationMode) -> nvbitfi::TransientCampaign {
    let entry = workloads::find(Scale::Test, PROGRAM).expect("known program");
    run_transient_campaign(entry.program.as_ref(), entry.check.as_ref(), &cfg(isolation))
        .expect("campaign runs")
}

#[cfg(unix)]
#[test]
fn sigkilled_worker_is_respawned_and_counts_match_thread_mode() {
    let baseline = run(IsolationMode::Thread);

    // SIGKILL the worker right after site 2 is dispatched, first attempt
    // only: the supervisor must declare it dead, respawn, and re-dispatch.
    let mut iso = ProcessIsolation::new(worker_command(), "test");
    iso.kill_hook = Some(FaultHook::new(|site, attempt| site == 2 && attempt == 1));
    let c = run(IsolationMode::Process(iso));

    assert_eq!(c.counts, baseline.counts, "a killed worker must not change any verdict");
    assert_eq!(c.worker_deaths(), 0, "the retry succeeded, so no WorkerDied verdict");
    assert!(
        c.runs.iter().any(|r| r.attempts > 1),
        "the killed site's verdict records its extra attempt"
    );
    for (a, b) in baseline.runs.iter().zip(&c.runs) {
        assert_eq!(a.params, b.params, "both modes cover the same seed-selected sites");
        // Process mode transports verdicts in the journal's canonical code
        // (SDC channel detail is not wire-preserved), so compare codes.
        assert_eq!(
            nvbitfi::logfile::outcome_code(&a.outcome),
            nvbitfi::logfile::outcome_code(&b.outcome),
            "per-site verdicts agree across isolation modes"
        );
    }
}

#[cfg(unix)]
#[test]
fn exhausted_retries_record_worker_died() {
    // Kill the worker on every attempt at site 1: with max_retries = 1 the
    // supervisor gives up after two kills and records the harness failure.
    let mut iso = ProcessIsolation::new(worker_command(), "test");
    iso.kill_hook = Some(FaultHook::new(|site, _attempt| site == 1));
    let c = run(IsolationMode::Process(iso));

    assert_eq!(c.worker_deaths(), 1, "exactly the doomed site dies");
    assert_eq!(c.counts.infra, 1);
    let died = &c.runs[1];
    assert_eq!(died.outcome.class, OutcomeClass::InfraError(InfraKind::WorkerDied));
    assert_eq!(died.attempts, 2, "max_retries = 1 grants one respawned re-dispatch");
    assert!(!died.injected);
    // The row survives the journal round-trip as the v5 `INFRA:died` code.
    let row = nvbitfi::logfile::results_log_row(died);
    assert!(row.contains("INFRA:died"), "{row}");
    let parsed = nvbitfi::logfile::read_results_log(&format!(
        "{}{row}",
        nvbitfi::logfile::results_log_header(PROGRAM, &[])
    ))
    .expect("row parses");
    assert_eq!(parsed[0].outcome.class, OutcomeClass::InfraError(InfraKind::WorkerDied));
}

fn nvbitfi_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nvbitfi")).args(args).output().expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nvbitfi-pisol-test-{}-{name}", std::process::id()));
    p
}

/// The deterministic verdict tally from a campaign/resume report: the
/// slice from "SDC" through "potential DUEs" (wall-clock figures vary).
fn counts_of(out: &str) -> &str {
    let start = out.find("SDC").expect("report has counts");
    let end = out.find("potential DUEs").expect("report has potential DUEs");
    &out[start..end]
}

#[test]
fn resume_reconstructs_process_isolation_and_reruns_infra_rows() {
    let log = tmp("resume.log");
    let _ = std::fs::remove_file(&log);

    let o = nvbitfi_bin(&[
        "campaign",
        PROGRAM,
        "--scale",
        "test",
        "--injections",
        "6",
        "--seed",
        "7",
        "--isolation",
        "process",
        "--log",
        log.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let baseline = String::from_utf8_lossy(&o.stdout).to_string();

    // Forge a worker death into the journal: swap one simulated row's
    // outcome for `INFRA:died`, exactly what a crashed campaign leaves
    // behind when a site exhausted its respawn budget.
    let text = std::fs::read_to_string(&log).expect("journal exists");
    assert!(text.starts_with("# nvbitfi results log v5"), "{text}");
    assert!(text.contains("# meta isolation=process"), "{text}");
    let mut forged = false;
    let doctored: Vec<String> = text
        .lines()
        .map(|line| {
            if forged || line.starts_with('#') {
                return line.to_string();
            }
            let mut cols: Vec<&str> = line.split('\t').collect();
            assert_eq!(cols.len(), 13, "{line}");
            forged = true;
            cols[7] = "0";
            cols[8] = "INFRA:died";
            cols.join("\t")
        })
        .collect();
    assert!(forged, "journal has at least one data row");
    std::fs::write(&log, doctored.join("\n") + "\n").unwrap();

    // Resume must re-run exactly that row — in process mode, reconstructed
    // from the journal's own `isolation=` meta — and land on the original
    // uninterrupted counts.
    let o = nvbitfi_bin(&["resume", log.to_str().unwrap()]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let resumed = String::from_utf8_lossy(&o.stdout).to_string();
    assert_eq!(counts_of(&resumed), counts_of(&baseline), "{resumed}");
    assert!(resumed.contains("5 resumed"), "{resumed}");
    assert!(resumed.contains("1 fresh"), "{resumed}");
    assert!(resumed.contains("0 infra errors"), "{resumed}");

    // The rewritten journal holds 6 clean verdicts and no infra rows.
    let rewritten = std::fs::read_to_string(&log).unwrap();
    let rows = nvbitfi::logfile::read_results_log(&rewritten).expect("rewritten log parses");
    assert_eq!(rows.len(), 6);
    assert!(rows.iter().all(|r| !matches!(r.outcome.class, OutcomeClass::InfraError(_))));

    let _ = std::fs::remove_file(&log);
}
