//! `nvbitfi` — command-line driver, the analog of the upstream NVBitFI
//! convenience scripts (`test.sh`, `run_profiler.py`, `run_injections.py`).
//!
//! ```text
//! nvbitfi list
//! nvbitfi profile  <program> [--mode exact|approx] [--out FILE]
//! nvbitfi select   <program> --profile FILE [--group ID] [--bitflip ID] [--seed S] [--out FILE]
//! nvbitfi inject   <program> --params FILE
//! nvbitfi campaign <program> [--injections N] [--group ID] [--bitflip ID] [--seed S] [--mode exact|approx] [--log FILE] [--max-retries N] [--deadline-ms MS] [--isolation thread|process]
//! nvbitfi resume   <LOG> [--scale paper|test] [--isolation thread|process]
//! nvbitfi pf       <program> --sm N --lane N --mask HEX --opcode MNEMONIC
//! nvbitfi pf-campaign <program> [--seed S]
//! nvbitfi disasm   <program>
//! ```
//!
//! Programs are the 15 suite entries (`nvbitfi list`); `--scale test`
//! switches to tiny inputs.

mod args;
mod commands;
mod sigint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
