//! Subcommand implementations.

use crate::args::Args;
use gpu_isa::disasm;
use gpu_runtime::{run_program, RuntimeConfig};
use nvbit::{CallSite, NvBit, NvBitTool};
use nvbitfi::{
    classify, golden_run, report, run_permanent_campaign, run_transient_campaign, select_transient,
    stats, BitFlipModel, CampaignConfig, InstrGroup, PermanentCampaignConfig, PermanentInjector,
    PermanentParams, Profile, ProfilingMode, TransientInjector, TransientParams,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use workloads::{BenchEntry, Scale};

const USAGE: &str = "\
usage: nvbitfi <command> [args]

commands:
  list                          list the benchmark programs
  profile <prog> [--mode exact|approx] [--out FILE] [--scale paper|test]
  select <prog> --profile FILE [--group ID] [--bitflip ID] [--seed S] [--count N] [--out FILE]
  inject <prog> --params FILE [--scale paper|test]
  run-list <prog> --list FILE [--log FILE]
  campaign <prog> [--injections N] [--group ID] [--bitflip ID] [--seed S] [--mode exact|approx] [--log FILE] [--no-checkpoint] [--no-static-prune]
  pf <prog> --opcode MNEMONIC [--sm N] [--lane N] [--mask HEX]
  pf-campaign <prog> [--seed S]
  lint <prog|MODULE.bin> [--json] [--scale paper|test]
  disasm <prog>
  assemble --in LISTING --out MODULE.bin
  disasm-bin --in MODULE.bin
  trace <prog> [--top N] [--mem N]
";

/// Dispatch a parsed command line.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags, or
/// failed campaigns.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "list" => list(),
        "profile" => profile(&args),
        "select" => select(&args),
        "inject" => inject(&args),
        "run-list" => run_list(&args),
        "campaign" => campaign(&args),
        "pf" => pf(&args),
        "pf-campaign" => pf_campaign(&args),
        "lint" => lint(&args),
        "disasm" => disassemble(&args),
        "assemble" => assemble(&args),
        "trace" => trace(&args),
        "disasm-bin" => disasm_bin(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn scale(args: &Args) -> Result<Scale, String> {
    match args.get("scale") {
        None | Some("paper") => Ok(Scale::Paper),
        Some("test") => Ok(Scale::Test),
        Some(other) => Err(format!("bad --scale `{other}` (paper|test)")),
    }
}

fn entry(args: &Args, scale: Scale) -> Result<BenchEntry, String> {
    let name = args.positional(0).ok_or("missing program name; try `nvbitfi list`")?;
    workloads::find(scale, name).ok_or_else(|| format!("unknown program `{name}`"))
}

fn mode(args: &Args) -> Result<ProfilingMode, String> {
    match args.get("mode") {
        None | Some("exact") => Ok(ProfilingMode::Exact),
        Some("approx") | Some("approximate") => Ok(ProfilingMode::Approximate),
        Some(other) => Err(format!("bad --mode `{other}` (exact|approx)")),
    }
}

fn group(args: &Args) -> Result<InstrGroup, String> {
    let id: u8 = args.get_or("group", InstrGroup::GpPr.id())?;
    InstrGroup::from_id(id).ok_or_else(|| format!("bad --group {id} (1..8, see Table II)"))
}

fn bitflip(args: &Args) -> Result<BitFlipModel, String> {
    let id: u8 = args.get_or("bitflip", BitFlipModel::FlipSingleBit.id())?;
    BitFlipModel::from_id(id).ok_or_else(|| format!("bad --bitflip {id} (1..4, see Table II)"))
}

fn list() -> Result<(), String> {
    let mut rows = vec![vec![
        "program".to_string(),
        "description".to_string(),
        "static kernels".to_string(),
        "dynamic kernels (paper)".to_string(),
    ]];
    for e in workloads::suite(Scale::Paper) {
        rows.push(vec![
            e.name.to_string(),
            e.description.to_string(),
            e.paper_static.to_string(),
            e.paper_dynamic.to_string(),
        ]);
    }
    print!("{}", report::table(&rows));
    Ok(())
}

fn profile(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let mode = mode(args)?;
    let p = nvbitfi::profile_program(e.program.as_ref(), RuntimeConfig::default(), mode)
        .map_err(|err| err.to_string())?;
    let text = p.to_file();
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|err| err.to_string())?;
            println!(
                "wrote {} dynamic kernels ({} dynamic instructions, {mode} profiling) to {path}",
                p.kernels.len(),
                p.total()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn select(args: &Args) -> Result<(), String> {
    let profile_path = args.get("profile").ok_or("missing --profile FILE")?;
    let text = std::fs::read_to_string(profile_path).map_err(|e| e.to_string())?;
    let profile = Profile::from_file(&text).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(args.get_or("seed", 0x5EED_u64)?);
    let count: usize = args.get_or("count", 1)?;
    if count == 1 {
        let params = select_transient(&profile, group(args)?, bitflip(args)?, &mut rng)
            .map_err(|e| e.to_string())?;
        match args.get("out") {
            Some(path) => {
                std::fs::write(path, params.to_file()).map_err(|e| e.to_string())?;
                println!("wrote fault parameters to {path}: {params}");
            }
            None => print!("{}", params.to_file()),
        }
    } else {
        // Multiple faults: write an injection list (the split-campaign
        // workflow — ship the list, run it elsewhere with `run-list`).
        let sites =
            nvbitfi::select_campaign(&profile, group(args)?, bitflip(args)?, count, &mut rng)
                .map_err(|e| e.to_string())?;
        let text = nvbitfi::logfile::write_injection_list(&sites);
        match args.get("out") {
            Some(path) => {
                std::fs::write(path, text).map_err(|e| e.to_string())?;
                println!("wrote {count} faults to {path}");
            }
            None => print!("{text}"),
        }
    }
    Ok(())
}

fn run_list(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let list_path = args.get("list").ok_or("missing --list FILE")?;
    let text = std::fs::read_to_string(list_path).map_err(|err| err.to_string())?;
    let sites = nvbitfi::logfile::read_injection_list(&text).map_err(|err| err.to_string())?;
    println!("running {} faults from {list_path} into {} …", sites.len(), e.name);

    let cfg = RuntimeConfig::default();
    let golden = golden_run(e.program.as_ref(), cfg.clone()).map_err(|err| err.to_string())?;
    let mut run_cfg = cfg;
    run_cfg.instr_budget = Some(golden.suggested_budget());

    let mut counts = nvbitfi::OutcomeCounts::default();
    let mut runs = Vec::new();
    for params in sites {
        let t = std::time::Instant::now();
        let (tool, handle) = TransientInjector::new(params.clone());
        let out = run_program(e.program.as_ref(), run_cfg.clone(), Some(Box::new(tool)));
        let outcome = classify(&golden, &out, e.check.as_ref());
        counts.add(&outcome);
        runs.push(nvbitfi::InjectionRun {
            params,
            outcome,
            injected: handle.get().injected,
            wall: t.elapsed(),
            prefix_instrs_skipped: out.prefix_instrs_skipped,
            pruned: false,
        });
    }
    println!("{counts}");
    if let Some(log_path) = args.get("log") {
        let campaign = nvbitfi::TransientCampaign {
            program: e.name.to_string(),
            profile: Profile { mode: nvbitfi::ProfilingMode::Exact, kernels: vec![] },
            golden,
            counts,
            runs,
            timing: Default::default(),
        };
        std::fs::write(log_path, nvbitfi::logfile::write_results_log(&campaign))
            .map_err(|err| err.to_string())?;
        println!("results log written to {log_path}");
    }
    Ok(())
}

fn inject(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let params_path = args.get("params").ok_or("missing --params FILE")?;
    let text = std::fs::read_to_string(params_path).map_err(|err| err.to_string())?;
    let params = TransientParams::from_file(&text).map_err(|err| err.to_string())?;
    println!("injecting: {params}");

    let cfg = RuntimeConfig::default();
    let golden = golden_run(e.program.as_ref(), cfg.clone()).map_err(|err| err.to_string())?;
    let mut run_cfg = cfg;
    run_cfg.instr_budget = Some(golden.suggested_budget());
    let (tool, handle) = TransientInjector::new(params);
    let out = run_program(e.program.as_ref(), run_cfg, Some(Box::new(tool)));
    let outcome = classify(&golden, &out, e.check.as_ref());
    let rec = handle.get();
    println!("injected: {}", rec.injected);
    if let Some(d) = rec.detail {
        println!(
            "  corrupted {} at pc {} in `{}` instance {} (thread {}): {:?}",
            d.opcode, d.pc, d.kernel, d.instance, d.global_tid, d.target
        );
    }
    println!("outcome: {outcome}");
    Ok(())
}

fn campaign(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let cfg = CampaignConfig {
        injections: args.get_or("injections", 100)?,
        seed: args.get_or("seed", 0x5EED_u64)?,
        group: group(args)?,
        bit_flip: bitflip(args)?,
        profiling: mode(args)?,
        use_checkpoints: !args.switch("no-checkpoint"),
        use_static_prune: !args.switch("no-static-prune"),
        ..CampaignConfig::default()
    };
    println!("running {} transient injections into {} …", cfg.injections, e.name);
    let result = run_transient_campaign(e.program.as_ref(), e.check.as_ref(), &cfg)
        .map_err(|err| err.to_string())?;
    println!("{}", report::transient_summary(&result));
    println!("90% confidence margin: ±{:.1}%", stats::error_margin(cfg.injections, 0.90) * 100.0);
    if let Some(log_path) = args.get("log") {
        std::fs::write(log_path, nvbitfi::logfile::write_results_log(&result))
            .map_err(|err| err.to_string())?;
        println!("results log written to {log_path}");
    }
    Ok(())
}

fn pf(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let mnemonic = args.get("opcode").ok_or("missing --opcode MNEMONIC")?;
    let opcode = gpu_isa::Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| format!("unknown opcode `{mnemonic}`"))?;
    let params = PermanentParams {
        sm_id: args.get_or("sm", 0u32)?,
        lane_id: args.get_or("lane", 0u32)?,
        bit_mask: args.get_u32_or("mask", 1)?,
        opcode_id: opcode.encode(),
    };
    params.validate(RuntimeConfig::default().gpu.num_sms).map_err(|err| err.to_string())?;
    println!("injecting: {params}");

    let cfg = RuntimeConfig::default();
    let golden = golden_run(e.program.as_ref(), cfg.clone()).map_err(|err| err.to_string())?;
    let mut run_cfg = cfg;
    run_cfg.instr_budget = Some(golden.suggested_budget());
    let (tool, handle) = PermanentInjector::new(params);
    let out = run_program(e.program.as_ref(), run_cfg, Some(Box::new(tool)));
    let outcome = classify(&golden, &out, e.check.as_ref());
    let rec = handle.get();
    println!("activations: {} of {} executions", rec.activations, rec.executions);
    println!("outcome: {outcome}");
    Ok(())
}

fn pf_campaign(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let cfg = PermanentCampaignConfig {
        seed: args.get_or("seed", 0x5EED_u64)?,
        ..PermanentCampaignConfig::default()
    };
    println!("running per-opcode permanent campaign on {} …", e.name);
    let result = run_permanent_campaign(e.program.as_ref(), e.check.as_ref(), &cfg)
        .map_err(|err| err.to_string())?;
    println!("{}", report::permanent_summary(&result));
    Ok(())
}

/// A tool that captures every loaded module, for `nvbitfi lint <prog>`.
struct ModuleCapture {
    modules: Arc<Mutex<Vec<gpu_isa::Module>>>,
}

impl NvBitTool for ModuleCapture {
    fn on_module_load(&mut self, module: &gpu_isa::Module) {
        self.modules.lock().push(module.clone());
    }
    fn device_call(&mut self, _s: &CallSite<'_>, _t: &mut gpu_sim::ThreadCtx<'_>) {}
}

fn lint(args: &Args) -> Result<(), String> {
    let target = args.positional(0).ok_or("missing target; try a program name or MODULE.bin")?;

    // A path to an encoded module lints the file; anything else is looked
    // up in the workload suite and linted as loaded (post encode/decode).
    let modules: Vec<gpu_isa::Module> = if std::path::Path::new(target).is_file() {
        let bytes = std::fs::read(target).map_err(|e| e.to_string())?;
        vec![gpu_isa::encode::decode_module(&bytes).map_err(|e| e.to_string())?]
    } else {
        let e = entry(args, scale(args)?)?;
        let modules = Arc::new(Mutex::new(Vec::new()));
        let tool = NvBit::new(ModuleCapture { modules: Arc::clone(&modules) });
        let out = run_program(e.program.as_ref(), RuntimeConfig::default(), Some(Box::new(tool)));
        if !out.termination.is_clean() {
            return Err(format!("program did not run cleanly: {:?}", out.termination));
        }
        let m = modules.lock().clone();
        if m.is_empty() {
            return Err(format!("{} loaded no modules", e.name));
        }
        m
    };

    let mut findings = Vec::new();
    for module in &modules {
        findings.extend(gpu_analysis::lint_module(module));
    }
    if args.switch("json") {
        print!("{}", gpu_analysis::render_json(&findings));
    } else {
        print!("{}", gpu_analysis::render_text(&findings));
    }
    let errors = findings.iter().filter(|f| f.severity == gpu_analysis::Severity::Error).count();
    if errors > 0 {
        return Err(format!("lint found {errors} error(s)"));
    }
    Ok(())
}

fn trace(args: &Args) -> Result<(), String> {
    // The classic NVBit example tools, driven together: instr_count,
    // opcode_hist, and a mem_trace sample.
    let e = entry(args, scale(args)?)?;
    let top: usize = args.get_or("top", 10)?;
    let mem_n: usize = args.get_or("mem", 8)?;

    let (tool, counts) = nvbit::tools::InstrCounter::new();
    let out = run_program(e.program.as_ref(), RuntimeConfig::default(), Some(Box::new(tool)));
    if !out.termination.is_clean() {
        return Err(format!("program did not run cleanly: {:?}", out.termination));
    }
    let counts = counts.get();
    println!("instr_count: {} dynamic instructions", counts.total);
    for (kernel, n) in counts.per_kernel.iter().take(top) {
        println!("  {kernel:<24} {n}");
    }
    if counts.per_kernel.len() > top {
        println!("  … {} more kernels", counts.per_kernel.len() - top);
    }

    let (tool, hist) = nvbit::tools::OpcodeHistogram::new();
    run_program(e.program.as_ref(), RuntimeConfig::default(), Some(Box::new(tool)));
    println!(
        "
opcode_hist (top {top}):"
    );
    for (op, n) in hist.get().hottest().into_iter().take(top) {
        println!("  {:<10} {n}", op.mnemonic());
    }

    let (tool, trace) = nvbit::tools::MemTracer::new(mem_n);
    run_program(e.program.as_ref(), RuntimeConfig::default(), Some(Box::new(tool)));
    println!(
        "
mem_trace (first {mem_n} accesses):"
    );
    for a in trace.get() {
        println!(
            "  {} pc {:>3} tid {:>4} {} {:#010x}",
            a.opcode.mnemonic(),
            a.pc,
            a.global_tid,
            if a.is_read { "R" } else { "W" },
            a.addr
        );
    }
    Ok(())
}

fn assemble(args: &Args) -> Result<(), String> {
    let in_path = args.get("in").ok_or("missing --in LISTING")?;
    let out_path = args.get("out").ok_or("missing --out MODULE.bin")?;
    let text = std::fs::read_to_string(in_path).map_err(|e| e.to_string())?;
    let module = gpu_isa::asm_text::parse_module(&text).map_err(|e| e.to_string())?;
    let bytes = gpu_isa::encode::encode_module(&module);
    std::fs::write(out_path, &bytes).map_err(|e| e.to_string())?;
    println!(
        "assembled module `{}` ({} kernels, {} bytes) to {out_path}",
        module.name(),
        module.kernels().len(),
        bytes.len()
    );
    Ok(())
}

fn disasm_bin(args: &Args) -> Result<(), String> {
    let in_path = args.get("in").ok_or("missing --in MODULE.bin")?;
    let bytes = std::fs::read(in_path).map_err(|e| e.to_string())?;
    let text = disasm::module_bytes(&bytes).map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

/// A tool that captures module disassembly, for `nvbitfi disasm`.
struct DisasmTool {
    listings: Arc<Mutex<Vec<String>>>,
}

impl NvBitTool for DisasmTool {
    fn on_module_load(&mut self, module: &gpu_isa::Module) {
        self.listings.lock().push(disasm::module(module));
    }
    fn device_call(&mut self, _s: &CallSite<'_>, _t: &mut gpu_sim::ThreadCtx<'_>) {}
}

fn disassemble(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let listings = Arc::new(Mutex::new(Vec::new()));
    let tool = NvBit::new(DisasmTool { listings: Arc::clone(&listings) });
    let out = run_program(e.program.as_ref(), RuntimeConfig::default(), Some(Box::new(tool)));
    if !out.termination.is_clean() {
        return Err(format!("program did not run cleanly: {:?}", out.termination));
    }
    for text in listings.lock().iter() {
        print!("{text}");
    }
    Ok(())
}
