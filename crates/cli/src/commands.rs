//! Subcommand implementations.

use crate::args::Args;
use gpu_isa::disasm;
use gpu_runtime::{run_program, RuntimeConfig};
use nvbit::{CallSite, NvBit, NvBitTool};
use nvbitfi::{
    atomic_write, classify, golden_run, report, run_permanent_campaign,
    run_transient_campaign_with, select_transient, stats, BitFlipModel, CampaignConfig,
    CampaignHooks, InjectionRun, InstrGroup, IsolationMode, Journal, PermanentCampaignConfig,
    PermanentInjector, PermanentParams, ProcessIsolation, Profile, ProfilingMode,
    TransientCampaign, TransientInjector, TransientParams,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;
use workloads::{BenchEntry, Scale};

const USAGE: &str = "\
usage: nvbitfi <command> [args]

commands:
  list                          list the benchmark programs
  profile <prog> [--mode exact|approx] [--out FILE] [--scale paper|test]
  select <prog> --profile FILE [--group ID] [--bitflip ID] [--seed S] [--count N] [--out FILE]
  inject <prog> --params FILE [--scale paper|test]
  run-list <prog> --list FILE [--log FILE]
  campaign <prog> [--injections N] [--group ID] [--bitflip ID] [--seed S] [--mode exact|approx] [--log FILE] [--max-retries N] [--deadline-ms MS] [--isolation thread|process] [--no-checkpoint] [--no-static-prune]
  resume <LOG> [--scale paper|test] [--isolation thread|process]
  pf <prog> --opcode MNEMONIC [--sm N] [--lane N] [--mask HEX]
  pf-campaign <prog> [--seed S]
  lint <prog|MODULE.bin> [--json] [--scale paper|test]
  disasm <prog>
  assemble --in LISTING --out MODULE.bin
  disasm-bin --in MODULE.bin
  trace <prog> [--top N] [--mem N]

campaign logs are durable journals: every classified run is flushed to
--log as it completes, Ctrl-C stops dispatching and flushes a partial log,
and `nvbitfi resume <LOG>` continues an interrupted campaign to the same
final counts an uninterrupted run would have produced.

--isolation process runs every injection in a supervised disposable worker
process: a run that segfaults, aborts, or is killed costs one verdict
(recorded INFRA:died and re-run by resume), never the campaign.
";

/// Dispatch a parsed command line.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags, or
/// failed campaigns.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "list" => list(),
        "profile" => profile(&args),
        "select" => select(&args),
        "inject" => inject(&args),
        "run-list" => run_list(&args),
        "campaign" => campaign(&args),
        "resume" => resume(&args),
        "pf" => pf(&args),
        "pf-campaign" => pf_campaign(&args),
        "lint" => lint(&args),
        "disasm" => disassemble(&args),
        "assemble" => assemble(&args),
        "trace" => trace(&args),
        "disasm-bin" => disasm_bin(&args),
        // Hidden: the process-isolation worker entry point, spawned by
        // `campaign --isolation process` — never by hand, so not in USAGE.
        "worker" => worker_cmd(),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn scale(args: &Args) -> Result<Scale, String> {
    match args.get("scale") {
        None | Some("paper") => Ok(Scale::Paper),
        Some("test") => Ok(Scale::Test),
        Some(other) => Err(format!("bad --scale `{other}` (paper|test)")),
    }
}

fn entry(args: &Args, scale: Scale) -> Result<BenchEntry, String> {
    let name = args.positional(0).ok_or("missing program name; try `nvbitfi list`")?;
    workloads::find(scale, name).ok_or_else(|| format!("unknown program `{name}`"))
}

fn mode(args: &Args) -> Result<ProfilingMode, String> {
    match args.get("mode") {
        None | Some("exact") => Ok(ProfilingMode::Exact),
        Some("approx") | Some("approximate") => Ok(ProfilingMode::Approximate),
        Some(other) => Err(format!("bad --mode `{other}` (exact|approx)")),
    }
}

fn group(args: &Args) -> Result<InstrGroup, String> {
    let id: u8 = args.get_or("group", InstrGroup::GpPr.id())?;
    InstrGroup::from_id(id).ok_or_else(|| format!("bad --group {id} (1..8, see Table II)"))
}

fn bitflip(args: &Args) -> Result<BitFlipModel, String> {
    let id: u8 = args.get_or("bitflip", BitFlipModel::FlipSingleBit.id())?;
    BitFlipModel::from_id(id).ok_or_else(|| format!("bad --bitflip {id} (1..4, see Table II)"))
}

fn list() -> Result<(), String> {
    let mut rows = vec![vec![
        "program".to_string(),
        "description".to_string(),
        "static kernels".to_string(),
        "dynamic kernels (paper)".to_string(),
    ]];
    for e in workloads::suite(Scale::Paper) {
        rows.push(vec![
            e.name.to_string(),
            e.description.to_string(),
            e.paper_static.to_string(),
            e.paper_dynamic.to_string(),
        ]);
    }
    print!("{}", report::table(&rows));
    Ok(())
}

fn profile(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let mode = mode(args)?;
    let p = nvbitfi::profile_program(e.program.as_ref(), RuntimeConfig::default(), mode)
        .map_err(|err| err.to_string())?;
    let text = p.to_file();
    match args.get("out") {
        Some(path) => {
            atomic_write(path, &text).map_err(|err| err.to_string())?;
            println!(
                "wrote {} dynamic kernels ({} dynamic instructions, {mode} profiling) to {path}",
                p.kernels.len(),
                p.total()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn select(args: &Args) -> Result<(), String> {
    let profile_path = args.get("profile").ok_or("missing --profile FILE")?;
    let text = std::fs::read_to_string(profile_path).map_err(|e| e.to_string())?;
    let profile = Profile::from_file(&text).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(args.get_or("seed", 0x5EED_u64)?);
    let count: usize = args.get_or("count", 1)?;
    if count == 1 {
        let params = select_transient(&profile, group(args)?, bitflip(args)?, &mut rng)
            .map_err(|e| e.to_string())?;
        match args.get("out") {
            Some(path) => {
                atomic_write(path, params.to_file()).map_err(|e| e.to_string())?;
                println!("wrote fault parameters to {path}: {params}");
            }
            None => print!("{}", params.to_file()),
        }
    } else {
        // Multiple faults: write an injection list (the split-campaign
        // workflow — ship the list, run it elsewhere with `run-list`).
        let sites =
            nvbitfi::select_campaign(&profile, group(args)?, bitflip(args)?, count, &mut rng)
                .map_err(|e| e.to_string())?;
        let text = nvbitfi::logfile::write_injection_list(&sites);
        match args.get("out") {
            Some(path) => {
                atomic_write(path, text).map_err(|e| e.to_string())?;
                println!("wrote {count} faults to {path}");
            }
            None => print!("{text}"),
        }
    }
    Ok(())
}

fn run_list(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let list_path = args.get("list").ok_or("missing --list FILE")?;
    let text = std::fs::read_to_string(list_path).map_err(|err| err.to_string())?;
    let sites = nvbitfi::logfile::read_injection_list(&text).map_err(|err| err.to_string())?;
    println!("running {} faults from {list_path} into {} …", sites.len(), e.name);

    let cfg = RuntimeConfig::default();
    let golden = golden_run(e.program.as_ref(), cfg.clone()).map_err(|err| err.to_string())?;
    let mut run_cfg = cfg;
    run_cfg.instr_budget = Some(golden.suggested_budget());

    // Journal incrementally: run-list logs are durable the same way
    // campaign logs are (no resume meta — the list file is the authority).
    let mut journal = match args.get("log") {
        Some(path) => {
            let header = nvbitfi::logfile::results_log_header(e.name, &[]);
            Some(Journal::create(path, &header).map_err(|err| format!("create {path}: {err}"))?)
        }
        None => None,
    };
    crate::sigint::install();

    let total = sites.len();
    let mut counts = nvbitfi::OutcomeCounts::default();
    for (done, params) in sites.into_iter().enumerate() {
        if crate::sigint::interrupted() {
            println!("interrupted — stopping after {done} of {total} runs");
            break;
        }
        let t = std::time::Instant::now();
        let (tool, handle) = TransientInjector::new(params.clone());
        let out = run_program(e.program.as_ref(), run_cfg.clone(), Some(Box::new(tool)));
        let outcome = classify(&golden, &out, e.check.as_ref());
        counts.add(&outcome);
        let run = nvbitfi::InjectionRun {
            params,
            outcome,
            injected: handle.get().injected,
            wall: t.elapsed(),
            prefix_instrs_skipped: out.prefix_instrs_skipped,
            pruned: false,
            attempts: 1,
            resumed: false,
        };
        if let Some(j) = journal.as_mut() {
            j.append(&nvbitfi::logfile::results_log_row(&run)).map_err(|err| err.to_string())?;
        }
    }
    println!("{counts}");
    if let Some(log_path) = args.get("log") {
        println!("results log written to {log_path}");
    }
    Ok(())
}

fn inject(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let params_path = args.get("params").ok_or("missing --params FILE")?;
    let text = std::fs::read_to_string(params_path).map_err(|err| err.to_string())?;
    let params = TransientParams::from_file(&text).map_err(|err| err.to_string())?;
    println!("injecting: {params}");

    let cfg = RuntimeConfig::default();
    let golden = golden_run(e.program.as_ref(), cfg.clone()).map_err(|err| err.to_string())?;
    let mut run_cfg = cfg;
    run_cfg.instr_budget = Some(golden.suggested_budget());
    let (tool, handle) = TransientInjector::new(params);
    let out = run_program(e.program.as_ref(), run_cfg, Some(Box::new(tool)));
    let outcome = classify(&golden, &out, e.check.as_ref());
    let rec = handle.get();
    println!("injected: {}", rec.injected);
    if let Some(d) = rec.detail {
        println!(
            "  corrupted {} at pc {} in `{}` instance {} (thread {}): {:?}",
            d.opcode, d.pc, d.kernel, d.instance, d.global_tid, d.target
        );
    }
    println!("outcome: {outcome}");
    Ok(())
}

/// Journal-and-interrupt hooks shared by `campaign` and `resume`: appends
/// one flushed v4 row per completed run and stops dispatch after Ctrl-C.
struct CliHooks {
    journal: Option<Mutex<Journal>>,
    io_error: Mutex<Option<String>>,
}

impl CliHooks {
    fn new(journal: Option<Journal>) -> CliHooks {
        CliHooks { journal: journal.map(Mutex::new), io_error: Mutex::new(None) }
    }

    /// The first journal-append failure, if any (workers keep running —
    /// losing durability must not also lose the in-memory campaign).
    fn take_error(&self) -> Option<String> {
        self.io_error.lock().take()
    }
}

impl CampaignHooks for CliHooks {
    fn on_run(&self, run: &InjectionRun) {
        if let Some(j) = &self.journal {
            if let Err(err) = j.lock().append(&nvbitfi::logfile::results_log_row(run)) {
                let mut slot = self.io_error.lock();
                if slot.is_none() {
                    *slot = Some(err.to_string());
                }
            }
        }
    }

    fn should_stop(&self) -> bool {
        crate::sigint::interrupted()
    }
}

fn mode_name(m: ProfilingMode) -> &'static str {
    match m {
        ProfilingMode::Exact => "exact",
        ProfilingMode::Approximate => "approx",
    }
}

fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Paper => "paper",
        Scale::Test => "test",
    }
}

/// Build the isolation mode from an `--isolation` value (or the journal's
/// `# meta isolation=`). Process mode spawns this very binary as the worker
/// command, with the campaign's scale forwarded for the suite lookup.
fn parse_isolation(choice: Option<&str>, sc: Scale) -> Result<IsolationMode, String> {
    match choice {
        None | Some("thread") => Ok(IsolationMode::Thread),
        Some("process") => {
            let exe = std::env::current_exe()
                .map_err(|err| format!("cannot locate own executable to spawn workers: {err}"))?;
            Ok(IsolationMode::Process(ProcessIsolation::new(
                vec![exe.to_string_lossy().into_owned(), "worker".to_string()],
                scale_name(sc),
            )))
        }
        Some(other) => Err(format!("bad isolation `{other}` (thread|process)")),
    }
}

fn isolation_name(mode: &IsolationMode) -> &'static str {
    match mode {
        IsolationMode::Thread => "thread",
        IsolationMode::Process(_) => "process",
    }
}

/// Hidden subcommand: one process-isolation worker session over
/// stdin/stdout. See `nvbitfi::worker` for the protocol.
fn worker_cmd() -> Result<(), String> {
    // Ctrl-C at the terminal reaches the whole process group; the worker
    // must outlive it so the supervisor can drain in-flight runs cleanly.
    crate::sigint::ignore();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    nvbitfi::serve(stdin.lock(), stdout.lock(), &|prog, sc| {
        let sc = match sc {
            "paper" => Scale::Paper,
            "test" => Scale::Test,
            _ => return None,
        };
        workloads::find(sc, prog).map(|e| (e.program, e.check))
    })
    .map_err(|err| format!("worker transport failure: {err}"))
}

/// The `# meta` pairs a results journal records so `resume` can rebuild the
/// identical seed-deterministic campaign without the original command line.
fn campaign_meta(sc: Scale, cfg: &CampaignConfig) -> Vec<(&'static str, String)> {
    vec![
        ("scale", scale_name(sc).to_string()),
        ("igid", cfg.group.id().to_string()),
        ("bfm", cfg.bit_flip.id().to_string()),
        ("injections", cfg.injections.to_string()),
        ("seed", cfg.seed.to_string()),
        ("mode", mode_name(cfg.profiling).to_string()),
        ("checkpoints", u8::from(cfg.use_checkpoints).to_string()),
        ("prune", u8::from(cfg.use_static_prune).to_string()),
        ("max_retries", cfg.max_retries.to_string()),
        (
            "deadline_ms",
            cfg.run_deadline.map_or_else(|| "-".to_string(), |d| d.as_millis().to_string()),
        ),
        ("isolation", isolation_name(&cfg.isolation).to_string()),
    ]
}

fn campaign_cfg(args: &Args) -> Result<CampaignConfig, String> {
    Ok(CampaignConfig {
        injections: args.get_or("injections", 100)?,
        seed: args.get_or("seed", 0x5EED_u64)?,
        group: group(args)?,
        bit_flip: bitflip(args)?,
        profiling: mode(args)?,
        use_checkpoints: !args.switch("no-checkpoint"),
        use_static_prune: !args.switch("no-static-prune"),
        max_retries: args.get_or("max-retries", CampaignConfig::default().max_retries)?,
        run_deadline: match args.get("deadline-ms") {
            Some(v) => Some(Duration::from_millis(
                v.parse().map_err(|_| format!("bad value for --deadline-ms: `{v}`"))?,
            )),
            None => None,
        },
        ..CampaignConfig::default()
    })
}

/// Report a finished (possibly interrupted) campaign and surface journal
/// state: robustness counters, the classified-runs confidence margin, any
/// journal I/O failure, and the resume hint.
fn finish_campaign(
    log_path: Option<&str>,
    result: &TransientCampaign,
    hooks: &CliHooks,
) -> Result<(), String> {
    println!("{}", report::transient_summary(result));
    let classified = result.counts.classified();
    if classified > 0 {
        println!(
            "90% confidence margin: ±{:.1}% (over {classified} classified runs)",
            stats::error_margin(classified as usize, 0.90) * 100.0,
        );
    } else {
        println!("90% confidence margin: n/a (no classified runs)");
    }
    if let Some(err) = hooks.take_error() {
        return Err(format!("journal write failed: {err}"));
    }
    if let Some(path) = log_path {
        println!("results log written to {path}");
    }
    if result.interrupted {
        match log_path {
            Some(path) => {
                println!("interrupted — completed runs are journaled");
                println!("resume with: nvbitfi resume {path}");
            }
            None => println!("interrupted — partial results (run with --log to make resumable)"),
        }
    }
    Ok(())
}

fn campaign(args: &Args) -> Result<(), String> {
    let sc = scale(args)?;
    let e = entry(args, sc)?;
    let mut cfg = campaign_cfg(args)?;
    cfg.isolation = parse_isolation(args.get("isolation"), sc)?;
    let journal = match args.get("log") {
        Some(path) => {
            let header = nvbitfi::logfile::results_log_header(e.name, &campaign_meta(sc, &cfg));
            Some(Journal::create(path, &header).map_err(|err| format!("create {path}: {err}"))?)
        }
        None => None,
    };
    crate::sigint::install();
    println!("running {} transient injections into {} …", cfg.injections, e.name);
    let hooks = CliHooks::new(journal);
    let result =
        run_transient_campaign_with(e.program.as_ref(), e.check.as_ref(), &cfg, Vec::new(), &hooks)
            .map_err(|err| err.to_string())?;
    finish_campaign(args.get("log"), &result, &hooks)
}

fn resume(args: &Args) -> Result<(), String> {
    let log_path = args.positional(0).ok_or("missing results log; usage: nvbitfi resume <LOG>")?;
    let text = std::fs::read_to_string(log_path).map_err(|err| format!("{log_path}: {err}"))?;
    let header = nvbitfi::logfile::parse_log_header(&text);
    let program = header
        .program
        .clone()
        .ok_or("log has no `program=` header line; is this a results log?")?;
    let get = |k: &str| header.meta.get(k).map(String::as_str);
    let need = |k: &str| {
        get(k).ok_or_else(|| {
            format!(
                "log is missing `# meta {k}=` (written by campaign --log since v4); cannot resume"
            )
        })
    };

    let sc = match args.get("scale").or(get("scale")) {
        None | Some("paper") => Scale::Paper,
        Some("test") => Scale::Test,
        Some(other) => return Err(format!("bad scale `{other}` (paper|test)")),
    };
    let e = workloads::find(sc, &program)
        .ok_or_else(|| format!("unknown program `{program}` named by the log"))?;
    let group_id: u8 = need("igid")?.parse().map_err(|_| "bad `# meta igid=`".to_string())?;
    let bfm_id: u8 = need("bfm")?.parse().map_err(|_| "bad `# meta bfm=`".to_string())?;
    let cfg = CampaignConfig {
        injections: need("injections")?
            .parse()
            .map_err(|_| "bad `# meta injections=`".to_string())?,
        seed: need("seed")?.parse().map_err(|_| "bad `# meta seed=`".to_string())?,
        group: InstrGroup::from_id(group_id).ok_or("bad `# meta igid=`")?,
        bit_flip: BitFlipModel::from_id(bfm_id).ok_or("bad `# meta bfm=`")?,
        profiling: match get("mode") {
            None | Some("exact") => ProfilingMode::Exact,
            Some("approx") => ProfilingMode::Approximate,
            Some(other) => return Err(format!("bad `# meta mode={other}`")),
        },
        use_checkpoints: get("checkpoints") != Some("0"),
        use_static_prune: get("prune") != Some("0"),
        max_retries: match get("max_retries") {
            Some(v) => v.parse().map_err(|_| "bad `# meta max_retries=`".to_string())?,
            None => CampaignConfig::default().max_retries,
        },
        run_deadline: match get("deadline_ms") {
            None | Some("-") => None,
            Some(v) => Some(Duration::from_millis(
                v.parse().map_err(|_| "bad `# meta deadline_ms=`".to_string())?,
            )),
        },
        // The journal records how the campaign executed; a resume
        // reconstructs the same isolation mode unless overridden.
        isolation: parse_isolation(args.get("isolation").or(get("isolation")), sc)?,
        ..CampaignConfig::default()
    };

    let (rows, torn) =
        nvbitfi::logfile::recover_results_log(&text).map_err(|err| err.to_string())?;
    if torn {
        println!("note: dropped a torn final line (crash mid-append); its run re-executes");
    }
    let prior = nvbitfi::logfile::to_runs(rows);
    let reran_infra = prior.iter().filter(|r| r.outcome.is_infra()).count();
    if reran_infra > 0 {
        println!("note: {reran_infra} prior infra-error run(s) get a fresh attempt");
    }

    // Rewrite the journal duplicate-free before appending: keep the header
    // (meta intact) and every honored verdict; drop the torn tail and any
    // infra rows being re-run. Atomic, so a crash here cannot lose the log.
    let meta_pairs: Vec<(&str, String)> =
        header.meta.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let mut content = nvbitfi::logfile::results_log_header(&program, &meta_pairs);
    let kept = prior.iter().filter(|r| !r.outcome.is_infra()).count();
    for run in prior.iter().filter(|r| !r.outcome.is_infra()) {
        content.push_str(&nvbitfi::logfile::results_log_row(run));
    }
    atomic_write(log_path, &content).map_err(|err| format!("rewrite {log_path}: {err}"))?;
    let journal = Journal::append_to(log_path).map_err(|err| format!("open {log_path}: {err}"))?;

    crate::sigint::install();
    println!(
        "resuming campaign on {program}: {kept} of {} verdicts reloaded from {log_path} …",
        cfg.injections
    );
    let hooks = CliHooks::new(Some(journal));
    let result =
        run_transient_campaign_with(e.program.as_ref(), e.check.as_ref(), &cfg, prior, &hooks)
            .map_err(|err| err.to_string())?;
    finish_campaign(Some(log_path), &result, &hooks)
}

fn pf(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let mnemonic = args.get("opcode").ok_or("missing --opcode MNEMONIC")?;
    let opcode = gpu_isa::Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| format!("unknown opcode `{mnemonic}`"))?;
    let params = PermanentParams {
        sm_id: args.get_or("sm", 0u32)?,
        lane_id: args.get_or("lane", 0u32)?,
        bit_mask: args.get_u32_or("mask", 1)?,
        opcode_id: opcode.encode(),
    };
    params.validate(RuntimeConfig::default().gpu.num_sms).map_err(|err| err.to_string())?;
    println!("injecting: {params}");

    let cfg = RuntimeConfig::default();
    let golden = golden_run(e.program.as_ref(), cfg.clone()).map_err(|err| err.to_string())?;
    let mut run_cfg = cfg;
    run_cfg.instr_budget = Some(golden.suggested_budget());
    let (tool, handle) = PermanentInjector::new(params);
    let out = run_program(e.program.as_ref(), run_cfg, Some(Box::new(tool)));
    let outcome = classify(&golden, &out, e.check.as_ref());
    let rec = handle.get();
    println!("activations: {} of {} executions", rec.activations, rec.executions);
    println!("outcome: {outcome}");
    Ok(())
}

fn pf_campaign(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let cfg = PermanentCampaignConfig {
        seed: args.get_or("seed", 0x5EED_u64)?,
        ..PermanentCampaignConfig::default()
    };
    println!("running per-opcode permanent campaign on {} …", e.name);
    let result = run_permanent_campaign(e.program.as_ref(), e.check.as_ref(), &cfg)
        .map_err(|err| err.to_string())?;
    println!("{}", report::permanent_summary(&result));
    Ok(())
}

/// A tool that captures every loaded module, for `nvbitfi lint <prog>`.
struct ModuleCapture {
    modules: Arc<Mutex<Vec<gpu_isa::Module>>>,
}

impl NvBitTool for ModuleCapture {
    fn on_module_load(&mut self, module: &gpu_isa::Module) {
        self.modules.lock().push(module.clone());
    }
    fn device_call(&mut self, _s: &CallSite<'_>, _t: &mut gpu_sim::ThreadCtx<'_>) {}
}

fn lint(args: &Args) -> Result<(), String> {
    let target = args.positional(0).ok_or("missing target; try a program name or MODULE.bin")?;

    // A path to an encoded module lints the file; anything else is looked
    // up in the workload suite and linted as loaded (post encode/decode).
    let modules: Vec<gpu_isa::Module> = if std::path::Path::new(target).is_file() {
        let bytes = std::fs::read(target).map_err(|e| e.to_string())?;
        vec![gpu_isa::encode::decode_module(&bytes).map_err(|e| e.to_string())?]
    } else {
        let e = entry(args, scale(args)?)?;
        let modules = Arc::new(Mutex::new(Vec::new()));
        let tool = NvBit::new(ModuleCapture { modules: Arc::clone(&modules) });
        let out = run_program(e.program.as_ref(), RuntimeConfig::default(), Some(Box::new(tool)));
        if !out.termination.is_clean() {
            return Err(format!("program did not run cleanly: {:?}", out.termination));
        }
        let m = modules.lock().clone();
        if m.is_empty() {
            return Err(format!("{} loaded no modules", e.name));
        }
        m
    };

    let mut findings = Vec::new();
    for module in &modules {
        findings.extend(gpu_analysis::lint_module(module));
    }
    if args.switch("json") {
        print!("{}", gpu_analysis::render_json(&findings));
    } else {
        print!("{}", gpu_analysis::render_text(&findings));
    }
    let errors = findings.iter().filter(|f| f.severity == gpu_analysis::Severity::Error).count();
    if errors > 0 {
        return Err(format!("lint found {errors} error(s)"));
    }
    Ok(())
}

fn trace(args: &Args) -> Result<(), String> {
    // The classic NVBit example tools, driven together: instr_count,
    // opcode_hist, and a mem_trace sample.
    let e = entry(args, scale(args)?)?;
    let top: usize = args.get_or("top", 10)?;
    let mem_n: usize = args.get_or("mem", 8)?;

    let (tool, counts) = nvbit::tools::InstrCounter::new();
    let out = run_program(e.program.as_ref(), RuntimeConfig::default(), Some(Box::new(tool)));
    if !out.termination.is_clean() {
        return Err(format!("program did not run cleanly: {:?}", out.termination));
    }
    let counts = counts.get();
    println!("instr_count: {} dynamic instructions", counts.total);
    for (kernel, n) in counts.per_kernel.iter().take(top) {
        println!("  {kernel:<24} {n}");
    }
    if counts.per_kernel.len() > top {
        println!("  … {} more kernels", counts.per_kernel.len() - top);
    }

    let (tool, hist) = nvbit::tools::OpcodeHistogram::new();
    run_program(e.program.as_ref(), RuntimeConfig::default(), Some(Box::new(tool)));
    println!(
        "
opcode_hist (top {top}):"
    );
    for (op, n) in hist.get().hottest().into_iter().take(top) {
        println!("  {:<10} {n}", op.mnemonic());
    }

    let (tool, trace) = nvbit::tools::MemTracer::new(mem_n);
    run_program(e.program.as_ref(), RuntimeConfig::default(), Some(Box::new(tool)));
    println!(
        "
mem_trace (first {mem_n} accesses):"
    );
    for a in trace.get() {
        println!(
            "  {} pc {:>3} tid {:>4} {} {:#010x}",
            a.opcode.mnemonic(),
            a.pc,
            a.global_tid,
            if a.is_read { "R" } else { "W" },
            a.addr
        );
    }
    Ok(())
}

fn assemble(args: &Args) -> Result<(), String> {
    let in_path = args.get("in").ok_or("missing --in LISTING")?;
    let out_path = args.get("out").ok_or("missing --out MODULE.bin")?;
    let text = std::fs::read_to_string(in_path).map_err(|e| e.to_string())?;
    let module = gpu_isa::asm_text::parse_module(&text).map_err(|e| e.to_string())?;
    let bytes = gpu_isa::encode::encode_module(&module);
    atomic_write(out_path, &bytes).map_err(|e| e.to_string())?;
    println!(
        "assembled module `{}` ({} kernels, {} bytes) to {out_path}",
        module.name(),
        module.kernels().len(),
        bytes.len()
    );
    Ok(())
}

fn disasm_bin(args: &Args) -> Result<(), String> {
    let in_path = args.get("in").ok_or("missing --in MODULE.bin")?;
    let bytes = std::fs::read(in_path).map_err(|e| e.to_string())?;
    let text = disasm::module_bytes(&bytes).map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

/// A tool that captures module disassembly, for `nvbitfi disasm`.
struct DisasmTool {
    listings: Arc<Mutex<Vec<String>>>,
}

impl NvBitTool for DisasmTool {
    fn on_module_load(&mut self, module: &gpu_isa::Module) {
        self.listings.lock().push(disasm::module(module));
    }
    fn device_call(&mut self, _s: &CallSite<'_>, _t: &mut gpu_sim::ThreadCtx<'_>) {}
}

fn disassemble(args: &Args) -> Result<(), String> {
    let e = entry(args, scale(args)?)?;
    let listings = Arc::new(Mutex::new(Vec::new()));
    let tool = NvBit::new(DisasmTool { listings: Arc::clone(&listings) });
    let out = run_program(e.program.as_ref(), RuntimeConfig::default(), Some(Box::new(tool)));
    if !out.termination.is_clean() {
        return Err(format!("program did not run cleanly: {:?}", out.termination));
    }
    for text in listings.lock().iter() {
        print!("{text}");
    }
    Ok(())
}
