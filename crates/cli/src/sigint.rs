//! Graceful Ctrl-C handling.
//!
//! The first SIGINT only raises a flag — campaign code polls it (via
//! `CampaignHooks::should_stop`) to stop dispatching new runs, let in-flight
//! runs finish, and flush the journal. The handler then restores the default
//! disposition, so a second Ctrl-C kills the process immediately (the
//! journal is crash-safe by design, so even that loses at most a torn final
//! line).
//!
//! No external signal crate is used: the handler goes through the C
//! `signal()` entry point libstd already links.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::INTERRUPTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;
    const SIG_IGN: usize = 1;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
        // Second Ctrl-C terminates immediately: restore the default
        // disposition from inside the (async-signal-safe) handler.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub fn install() {
        let handler = on_sigint as extern "C" fn(i32) as *const ();
        unsafe {
            signal(SIGINT, handler as usize);
        }
    }

    pub fn ignore() {
        unsafe {
            signal(SIGINT, SIG_IGN);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-Unix builds run campaigns without interrupt support; Ctrl-C
    /// falls back to the platform default (terminate).
    pub fn install() {}

    pub fn ignore() {}
}

/// Install the SIGINT handler. Call once, before starting a campaign.
pub fn install() {
    imp::install();
}

/// Ignore SIGINT entirely. Worker processes use this: a terminal Ctrl-C is
/// aimed at the supervising campaign, which lets in-flight runs finish and
/// then drains its workers over the protocol (shutdown frame, then SIGTERM)
/// — a worker that died to the shared SIGINT would instead burn a retry and
/// leave its in-flight site as an infra error.
pub fn ignore() {
    imp::ignore();
}

/// `true` once the user has pressed Ctrl-C.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_is_idempotent() {
        install();
        install();
        assert!(!interrupted());
    }
}
