//! Minimal flag parsing (`--key value` pairs plus positionals).

use std::collections::HashMap;

/// Flags that take no value.
const SWITCHES: &[&str] = &["no-checkpoint", "no-static-prune", "json"];

/// Parsed command-line: positionals plus `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse everything after the subcommand.
    ///
    /// # Errors
    ///
    /// Returns a message if a `--flag` has no value.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if SWITCHES.contains(&key) {
                    args.switches.push(key.to_string());
                    continue;
                }
                let value = it.next().ok_or_else(|| format!("flag --{key} requires a value"))?;
                args.options.insert(key.to_string(), value.clone());
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    /// Whether a valueless `--switch` was present.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: `{v}`")),
        }
    }

    /// A u32 option accepting `0x` hex, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when the value does not parse.
    pub fn get_u32_or(&self, key: &str, default: u32) -> Result<u32, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => {
                let parsed = if let Some(hex) = v.strip_prefix("0x") {
                    u32::from_str_radix(hex, 16)
                } else {
                    v.parse()
                };
                parsed.map_err(|_| format!("bad value for --{key}: `{v}`"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_and_flags() {
        let a = Args::parse(&sv(&["354.cg", "--seed", "7", "--mode", "approx"])).expect("parse");
        assert_eq!(a.positional(0), Some("354.cg"));
        assert_eq!(a.get("mode"), Some("approx"));
        assert_eq!(a.get_or("seed", 0u64).expect("seed"), 7);
        assert_eq!(a.get_or("injections", 100usize).expect("default"), 100);
    }

    #[test]
    fn hex_values() {
        let a = Args::parse(&sv(&["--mask", "0x8000"])).expect("parse");
        assert_eq!(a.get_u32_or("mask", 0).expect("mask"), 0x8000);
        let a = Args::parse(&sv(&["--mask", "255"])).expect("parse");
        assert_eq!(a.get_u32_or("mask", 0).expect("mask"), 255);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&sv(&["--seed"])).is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let a = Args::parse(&sv(&["prog", "--no-checkpoint", "--seed", "7"])).expect("parse");
        assert!(a.switch("no-checkpoint"));
        assert_eq!(a.get_or("seed", 0u64).expect("seed"), 7);
        assert!(!Args::parse(&sv(&["prog"])).expect("parse").switch("no-checkpoint"));
    }

    #[test]
    fn bad_parse_names_flag() {
        let a = Args::parse(&sv(&["--seed", "banana"])).expect("parse");
        let err = a.get_or("seed", 0u64).unwrap_err();
        assert!(err.contains("--seed"));
    }
}
