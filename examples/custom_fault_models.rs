//! The paper's §V "future directions", exercised: intermittent faults
//! (random and bursty activation), stuck-at corruption functions, a
//! multi-opcode permanent fault, and a fault dictionary.
//!
//! Run with `cargo run --release --example custom_fault_models`.

use gpu_runtime::{run_program, RuntimeConfig};
use nvbitfi::ext::{
    ActivationPattern, CorruptionFn, DictEntry, DictInjector, ExtFault, ExtInjector,
    FaultDictionary,
};
use nvbitfi::{classify, golden_run};
use workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = workloads::ep::Ep { scale: Scale::Test };
    let check = workloads::ep::Ep::check();
    let cfg = RuntimeConfig { instr_budget: Some(10_000_000), ..RuntimeConfig::default() };
    let golden = golden_run(&program, cfg.clone())?;

    println!("§V extensions on 352.ep:\n");

    // 1. Intermittent fault, random activation process.
    for prob in [0.01, 0.2, 0.9] {
        let fault = ExtFault {
            opcodes: vec![gpu_isa::Opcode::IMUL],
            sm_id: 0,
            lane_id: 11,
            corruption: CorruptionFn::Xor(1 << 12),
            activation: ActivationPattern::Random { prob, seed: 7 },
        };
        let (tool, handle) = ExtInjector::new(fault);
        let out = run_program(&program, cfg.clone(), Some(Box::new(tool)));
        let rec = handle.get();
        let outcome = classify(&golden, &out, &check);
        println!(
            "intermittent IMUL fault, p={prob:<4}: {}/{} activations -> {outcome}",
            rec.activations, rec.opportunities
        );
    }

    // 2. Bursty activation window.
    let fault = ExtFault {
        opcodes: vec![gpu_isa::Opcode::IMUL],
        sm_id: 0,
        lane_id: 11,
        corruption: CorruptionFn::Xor(1 << 12),
        activation: ActivationPattern::Burst { start: 2, len: 3 },
    };
    let (tool, handle) = ExtInjector::new(fault);
    let out = run_program(&program, cfg.clone(), Some(Box::new(tool)));
    let rec = handle.get();
    println!(
        "\nbursty IMUL fault (window [2,5)): {}/{} activations -> {}",
        rec.activations,
        rec.opportunities,
        classify(&golden, &out, &check)
    );

    // 3. Stuck-at-1 bit across multiple opcodes sharing "one ALU".
    let fault = ExtFault {
        opcodes: vec![gpu_isa::Opcode::IADD, gpu_isa::Opcode::IADD32I, gpu_isa::Opcode::IADD3],
        sm_id: 0,
        lane_id: 4,
        corruption: CorruptionFn::Or(1 << 3),
        activation: ActivationPattern::Always,
    };
    let (tool, handle) = ExtInjector::new(fault);
    let out = run_program(&program, cfg.clone(), Some(Box::new(tool)));
    println!(
        "\nstuck-at-1 bit 3 on the integer-add ALU (3 opcodes): {} corruptions -> {}",
        handle.get().activations,
        classify(&golden, &out, &check)
    );

    // 4. A fault dictionary: per-opcode corruption with manifestation rates,
    //    as a circuit-level model would provide.
    let mut dict = FaultDictionary::new();
    dict.insert(
        gpu_isa::Opcode::IMUL,
        DictEntry { corruption: CorruptionFn::Xor(1 << 8), manifest_prob: 0.6 },
    );
    dict.insert(
        gpu_isa::Opcode::LOP3,
        DictEntry { corruption: CorruptionFn::And(!0x1), manifest_prob: 0.3 },
    );
    dict.insert(
        gpu_isa::Opcode::SHR,
        DictEntry { corruption: CorruptionFn::Set(0), manifest_prob: 0.05 },
    );
    let (tool, handle) = DictInjector::new(dict, 0, 21, 99);
    let out = run_program(&program, cfg, Some(Box::new(tool)));
    let rec = handle.get();
    println!(
        "\nfault dictionary (IMUL/LOP3/SHR): {}/{} manifested -> {}",
        rec.activations,
        rec.opportunities,
        classify(&golden, &out, &check)
    );
    Ok(())
}
