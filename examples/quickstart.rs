//! Quickstart: the paper's Figure 1 pipeline, end to end, on one program.
//!
//! ```text
//! profile  →  select fault  →  inject  →  compare to golden
//! ```
//!
//! Run with `cargo run --release --example quickstart`.

use gpu_runtime::{run_program, RuntimeConfig};
use nvbitfi::{
    classify, golden_run, select_transient, BitFlipModel, InstrGroup, ProfilingMode,
    TransientInjector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = workloads::ostencil::Ostencil { scale: Scale::Test };
    let check = workloads::ostencil::Ostencil::check();
    let cfg = RuntimeConfig::default();

    // Golden run: capture reference outputs and calibrate the hang monitor.
    let golden = golden_run(&program, cfg.clone())?;
    println!("golden stdout:\n{}", golden.stdout);
    let mut run_cfg = cfg;
    run_cfg.instr_budget = Some(golden.suggested_budget());

    // Step 1 — profile (the profiler.so analog, attached like LD_PRELOAD).
    let profile = nvbitfi::profile_program(&program, run_cfg.clone(), ProfilingMode::Exact)?;
    println!(
        "profile: {} dynamic kernels, {} dynamic instructions",
        profile.kernels.len(),
        profile.total()
    );
    println!("profile file (first 3 lines):");
    for line in profile.to_file().lines().take(3) {
        println!("  {line}");
    }

    // Step 2 — select faults uniformly over the G_GPPR population.
    let mut rng = StdRng::seed_from_u64(42);
    println!("\ninjecting 5 random transient faults:");
    for i in 0..5 {
        let params =
            select_transient(&profile, InstrGroup::GpPr, BitFlipModel::FlipSingleBit, &mut rng)?;
        println!("  fault {i}: {params}");

        // Step 3 — inject (the injector.so analog).
        let (tool, handle) = TransientInjector::new(params);
        let out = run_program(&program, run_cfg.clone(), Some(Box::new(tool)));

        // Step 4 — compare against golden and classify (Table V).
        let outcome = classify(&golden, &out, &check);
        let fired = if handle.get().injected { "fired" } else { "not reached" };
        println!("           -> {outcome} ({fired})");
    }
    Ok(())
}
