//! A permanent-fault sweep over every executed opcode of one program —
//! §III-B's pf_injector driven as in Figure 3, with per-opcode outcomes and
//! dynamic-count weights.
//!
//! Usage: `cargo run --release --example permanent_sweep [program]`

use nvbitfi::{report, run_permanent_campaign, PermanentCampaignConfig};
use workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "350.md".to_string());
    let entry =
        workloads::find(Scale::Test, &name).ok_or_else(|| format!("unknown program `{name}`"))?;

    println!("permanent-fault sweep over {} …", entry.name);
    let cfg = PermanentCampaignConfig::default();
    let result = run_permanent_campaign(entry.program.as_ref(), entry.check.as_ref(), &cfg)?;

    println!("\n{}\n", report::permanent_summary(&result));
    let total_weight: u64 = result.runs.iter().map(|r| r.weight).sum();
    let mut rows = vec![vec![
        "opcode".to_string(),
        "SM".to_string(),
        "lane".to_string(),
        "mask".to_string(),
        "weight".to_string(),
        "activations".to_string(),
        "outcome".to_string(),
    ]];
    let mut runs: Vec<_> = result.runs.iter().collect();
    runs.sort_by_key(|r| std::cmp::Reverse(r.weight));
    for r in &runs {
        rows.push(vec![
            r.params.opcode().mnemonic().to_string(),
            r.params.sm_id.to_string(),
            r.params.lane_id.to_string(),
            format!("{:#010x}", r.params.bit_mask),
            format!("{:.1}%", 100.0 * r.weight as f64 / total_weight.max(1) as f64),
            r.activations.to_string(),
            r.outcome.to_string(),
        ]);
    }
    print!("{}", report::table(&rows));
    println!(
        "\n{} of 171 opcodes executed by this program (paper range: 16-41); the rest",
        result.runs.len()
    );
    println!("were pruned via the profile, as §IV-C describes.");
    Ok(())
}
