//! AVF estimation — the paper's §I motivation, computed the way a
//! reliability engineer would: one campaign per base instruction group,
//! combined into a whole-program AVF by each group's share of the dynamic
//! instruction population.
//!
//! Usage: `cargo run --release --example avf_breakdown [program] [injections-per-group]`

use nvbitfi::avf::{self, GroupAvf};
use nvbitfi::{report, run_transient_campaign, CampaignConfig, InstrGroup, ProfilingMode};
use workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv = std::env::args().skip(1);
    let name = argv.next().unwrap_or_else(|| "303.ostencil".to_string());
    let injections: usize = argv.next().and_then(|v| v.parse().ok()).unwrap_or(50);
    let entry =
        workloads::find(Scale::Test, &name).ok_or_else(|| format!("unknown program `{name}`"))?;

    println!("AVF breakdown for {} ({} injections per populated group)\n", entry.name, injections);
    let mut rows = vec![vec![
        "group".to_string(),
        "population".to_string(),
        "share".to_string(),
        "SDC-AVF".to_string(),
        "DUE-AVF".to_string(),
        "AVF".to_string(),
    ]];
    let mut groups: Vec<GroupAvf> = Vec::new();
    // The six base groups partition the dynamic instruction population.
    for group in InstrGroup::ALL.iter().take(6).copied() {
        let cfg = CampaignConfig {
            injections,
            group,
            profiling: ProfilingMode::Exact,
            ..CampaignConfig::default()
        };
        match run_transient_campaign(entry.program.as_ref(), entry.check.as_ref(), &cfg) {
            Ok(result) => {
                let population = result.profile.total_in_group(group);
                let profile_total = result.profile.total();
                let estimate = avf::from_campaign(&result);
                rows.push(vec![
                    group.to_string(),
                    population.to_string(),
                    format!("{:.1}%", 100.0 * population as f64 / profile_total.max(1) as f64),
                    report::pct(estimate.sdc),
                    report::pct(estimate.due),
                    report::pct(estimate.total()),
                ]);
                groups.push(GroupAvf { group, population, estimate });
            }
            Err(nvbitfi::FiError::EmptyPopulation { .. }) => {
                rows.push(vec![
                    group.to_string(),
                    "0".into(),
                    "0.0%".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                ]);
            }
            Err(e) => return Err(e.into()),
        }
    }
    print!("{}", report::table(&rows));

    let combined = avf::combine(&groups).ok_or("no populated groups")?;
    println!("\nwhole-program estimate (population-weighted): {combined}");
    println!("visible-error rate = raw fault rate × {:.3} (the §I product)", combined.total());
    Ok(())
}
