//! A full transient-fault campaign on one benchmark program, with
//! confidence intervals — §IV-B's experiment for a single program.
//!
//! Usage: `cargo run --release --example transient_campaign [program] [injections]`
//! e.g. `cargo run --release --example transient_campaign 354.cg 200`

use nvbitfi::{report, run_transient_campaign, stats, CampaignConfig, ProfilingMode};
use workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv = std::env::args().skip(1);
    let name = argv.next().unwrap_or_else(|| "303.ostencil".to_string());
    let injections: usize = argv.next().and_then(|v| v.parse().ok()).unwrap_or(100);

    let entry = workloads::find(Scale::Test, &name)
        .ok_or_else(|| format!("unknown program `{name}`; try 303.ostencil, 354.cg, …"))?;
    let cfg =
        CampaignConfig { injections, profiling: ProfilingMode::Exact, ..CampaignConfig::default() };
    println!("running {injections} transient injections into {} …", entry.name);
    let result = run_transient_campaign(entry.program.as_ref(), entry.check.as_ref(), &cfg)?;

    println!("\n{}", report::transient_summary(&result));
    println!("{} (group {})", nvbitfi::avf::from_campaign(&result), cfg.group);
    let (sdc, due, masked) = result.counts.fractions();
    let margin = stats::error_margin(injections, 0.90);
    println!("\noutcomes with 90% confidence intervals:");
    println!("  SDC    {:>6}  ±{:.1}%", report::pct(sdc), margin * 100.0);
    println!("  DUE    {:>6}  ±{:.1}%", report::pct(due), margin * 100.0);
    println!("  Masked {:>6}  ±{:.1}%", report::pct(masked), margin * 100.0);
    println!("  potential DUEs folded into the above: {}", result.counts.potential_due);
    println!(
        "\nfor ±3% at 95% confidence you would need {} injections (paper §IV-B)",
        stats::injections_needed(0.031, 0.95)
    );

    println!("\nfirst 5 injections:");
    for run in result.runs.iter().take(5) {
        println!("  {} -> {}", run.params, run.outcome);
    }
    Ok(())
}
