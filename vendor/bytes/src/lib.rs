//! Offline stand-in for `bytes`.
//!
//! Implements the small slice of the `bytes` 1.x API the module codec in
//! `gpu-isa` uses: little-endian put/get accessors, `remaining`,
//! `copy_to_slice`/`copy_to_bytes`, `BytesMut::freeze`, and
//! `Bytes::copy_from_slice`. Backed by plain `Vec<u8>` plus a read cursor —
//! no refcounted buffer sharing, which nothing here relies on.

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read `dst.len()` bytes, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` if fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read `len` bytes out as an owned buffer, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain (as upstream does).
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.len() >= len, "copy_to_bytes past end of buffer");
        let out = Bytes { data: self.data[self.pos..self.pos + len].to_vec(), pos: 0 };
        self.pos += len;
        out
    }

    /// The unread bytes as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] for reading.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }

    /// The written bytes as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u16_le(0xBEEF);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_slice(b"hi");
        assert_eq!(w.len(), 9);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 9);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.copy_to_bytes(2).to_vec(), b"hi");
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        b.get_u32_le();
    }
}
