//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()`
//! returns the guard directly (no `Result`), and a poisoned lock is
//! recovered rather than propagated — matching parking_lot's semantics of
//! not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive (parking_lot-shaped `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, yielding its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never panics on
    /// poisoning (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (parking_lot-shaped `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, yielding its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
