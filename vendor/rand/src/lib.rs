//! Offline stand-in for `rand` 0.8.
//!
//! The container image has no registry access, so the real crate cannot be
//! fetched. This crate implements the subset of the rand 0.8 API the
//! workspace uses — [`Rng::gen_range`] over integer and float ranges,
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] — on top of a SplitMix64 generator.
//!
//! Streams are deterministic per seed (campaigns stay reproducible) but
//! differ from upstream `StdRng` (ChaCha12); nothing in the workspace
//! depends on upstream's exact values, only on seed-determinism and
//! uniformity.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen_range`] accepts (half-open ranges). Generic over
/// the output type, as upstream is, so `rng.gen_range(0..6)` infers the
/// literal type from the call site.
pub trait SampleRange<T> {
    /// Draw uniformly from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, span)` by widening multiply (no modulo bias to
/// speak of for the span sizes used here).
#[inline]
fn below(rng: &mut impl RngCore, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let span = (self.end as u64).checked_sub(self.start as u64)
                    .filter(|s| *s > 0)
                    .expect("gen_range: range must be non-empty");
                self.start + below(rng, span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                // Shift to unsigned space so the span never overflows.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                assert!(
                    self.start < self.end && span > 0,
                    "gen_range: range must be non-empty"
                );
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

signed_int_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: range must be non-empty");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut impl RngCore) -> f32 {
        assert!(self.start < self.end, "gen_range: range must be non-empty");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

/// The user-facing sampling surface, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, so generators can be reborrowed).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic per seed, passes the uniformity expectations of the
    /// selection tests, and is trivially `Send` for worker fan-out.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Scramble once so nearby seeds do not start in nearby states.
            let mut rng = StdRng { state: seed ^ 0x517C_C1B7_2722_0A95 };
            rng.next_u64();
            StdRng { state: rng.state.wrapping_add(rng.next_u64()) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let first: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(7);
        let second: Vec<u64> = (0..8).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b} out of tolerance");
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&heads), "gen_bool(0.25) gave {heads}");
    }
}
