//! Offline stand-in for `serde`.
//!
//! The container image has no registry access, so the real serde cannot be
//! fetched. The workspace only uses serde's *derive* surface
//! (`#[derive(Serialize, Deserialize)]`) as machine-readable documentation;
//! no code path serializes through it. This crate re-exports no-op derive
//! macros under the canonical names so `use serde::{Deserialize, Serialize}`
//! keeps working unchanged.

pub use serde_derive::{Deserialize, Serialize};
