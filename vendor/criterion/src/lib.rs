//! Offline stand-in for `criterion`.
//!
//! The container image has no registry access, so the real crate cannot be
//! fetched. This crate implements the subset of the criterion 0.5 API the
//! benchmark targets use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::throughput`],
//! `criterion_group!`, `criterion_main!` — with a plain wall-clock
//! measurement loop: a warm-up iteration, `sample_size` timed samples, and
//! a median/mean report per benchmark on stdout.
//!
//! Two stand-in extensions the workspace relies on:
//!
//! * [`Criterion::json_output`] — after `criterion_main!` finishes it writes
//!   every collected measurement to the given path as a JSON array (used to
//!   emit `BENCH_checkpoint.json` baselines), and
//! * `--test` on the command line (what `cargo test --benches` passes) runs
//!   each benchmark exactly once, so benches double as smoke tests.

use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` identifier.
    pub id: String,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Median wall-clock time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Optional throughput denominator (bytes or elements per iteration).
    pub throughput: Option<Throughput>,
}

/// Throughput denominators, as in criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    json_path: Option<String>,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 20, test_mode, json_path: None, results: Vec::new() }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Stand-in extension: write all measurements to `path` as JSON when
    /// the run finishes.
    #[must_use]
    pub fn json_output(mut self, path: impl Into<String>) -> Criterion {
        self.json_path = Some(path.into());
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        self.run_one(name.to_string(), None, f);
        self
    }

    fn run_one(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut per_sample_ns: Vec<f64> = Vec::with_capacity(samples);
        let mut iters = 1u64;
        // Warm-up: also sizes the iteration count so one sample takes at
        // least ~1 ms (keeps timer noise manageable for fast bodies).
        if !self.test_mode {
            loop {
                let mut b = Bencher { iters, elapsed: Duration::ZERO };
                f(&mut b);
                if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                    break;
                }
                iters *= 2;
            }
        }
        for _ in 0..samples {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_sample_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_sample_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = per_sample_ns[per_sample_ns.len() / 2];
        let mean_ns = per_sample_ns.iter().sum::<f64>() / per_sample_ns.len() as f64;
        println!("{id:<60} median {:>12} mean {:>12}", fmt_ns(median_ns), fmt_ns(mean_ns));
        self.results.push(Measurement {
            id,
            samples,
            iters_per_sample: iters,
            mean_ns,
            median_ns,
            throughput,
        });
    }

    /// All measurements collected so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Write the JSON report if [`Criterion::json_output`] was configured.
    /// Called automatically by `criterion_main!`.
    pub fn finalize(&self) {
        let Some(path) = &self.json_path else { return };
        let mut out = String::from("[\n");
        for (i, m) in self.results.iter().enumerate() {
            let tp = match m.throughput {
                Some(Throughput::Bytes(b)) => format!(",\"throughput_bytes\":{b}"),
                Some(Throughput::Elements(e)) => format!(",\"throughput_elements\":{e}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {{\"id\":{:?},\"samples\":{},\"iters_per_sample\":{},\"mean_ns\":{:.1},\"median_ns\":{:.1}{}}}{}\n",
                m.id,
                m.samples,
                m.iters_per_sample,
                m.mean_ns,
                m.median_ns,
                tp,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("]\n");
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, out) {
            Ok(()) => println!("wrote benchmark baseline to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput denominator reported for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Measure one function.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{name}", self.name);
        self.c.run_one(id, self.throughput, f);
        self
    }

    /// End the group (drop-equivalent; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it the harness-chosen number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() -> $crate::Criterion {
            let mut c = $config;
            $($target(&mut c);)+
            c
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Define the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                let c = $group();
                c.finalize();
            )+
        }
    };
}
