//! Offline stand-in for `proptest`.
//!
//! The container image has no registry access, so the real crate cannot be
//! fetched. This crate keeps the workspace's property tests runnable by
//! implementing the API surface they use — [`Strategy`] with `prop_map`,
//! [`any`], [`Just`], range strategies, tuple strategies,
//! [`collection::vec`], [`sample::Index`], and the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//! macros — as plain deterministic sampling.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! values via the standard panic message only), a fixed per-test case count
//! ([`CASES`]), and seeds derived from the test name so runs are
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Number of random cases each `proptest!` test executes.
pub const CASES: u32 = 64;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A value generator. The stand-in `Strategy` is just "sample a value";
/// there is no shrinking tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly log-uniform over magnitude — close enough to
        // upstream's "any float" for the numeric tests in this workspace.
        let mantissa = rng.gen_range(-1.0..1.0);
        let exp = rng.gen_range(0u32..64) as i32 - 32;
        mantissa * (exp as f64).exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Uniform choice over boxed alternatives — the engine behind
/// `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one alternative.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};
    use rand::RngCore;

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero (as upstream does).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Run `f` for [`CASES`] deterministic cases; the driver behind
/// `proptest!`-generated tests.
pub fn run_cases(test_name: &str, mut f: impl FnMut(&mut TestRng)) {
    // Seed from the test name so each test gets an independent, stable
    // stream.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    for case in 0..CASES {
        let mut rng = TestRng::seed_from_u64(seed ^ ((case as u64) << 32));
        f(&mut rng);
    }
}

/// Everything the property tests import.
pub mod prelude {
    /// The `prop::` namespace (`prop::collection`, `prop::sample`).
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

/// Assert inside a property test. Alias of `assert!` (no shrink report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test. Alias of `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test. Alias of `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// One arm per strategy, drawn uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Bind `name in strategy` / `name: Type` parameters, then run the body.
/// Internal engine shared by `proptest!` and `prop_compose!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block;) => { $body };
    ($rng:ident, $body:block; $name:ident in $strat:expr) => {{
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $body
    }};
    ($rng:ident, $body:block; $name:ident in $strat:expr, $($rest:tt)*) => {{
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng, $body; $($rest)*)
    }};
    ($rng:ident, $body:block; $name:ident : $ty:ty) => {{
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $body
    }};
    ($rng:ident, $body:block; $name:ident : $ty:ty, $($rest:tt)*) => {{
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!($rng, $body; $($rest)*)
    }};
}

/// Define property tests. Each function runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng, $body; $($params)*)
            });
        }
    )*};
}

/// Compose strategies into a named strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($params:tt)*) -> $out:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $out> {
            $crate::FnStrategy(move |__proptest_rng: &mut $crate::TestRng| {
                $crate::__proptest_bind!(__proptest_rng, $body; $($params)*)
            })
        }
    };
}

/// Strategy backed by a sampling closure — what `prop_compose!` expands to.
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u32..10, b in 0u32..10) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u8..9, y: bool, pair in arb_pair()) {
            prop_assert!((3..9).contains(&x));
            let _ = y;
            prop_assert!(pair.0 < 10 && pair.1 < 10);
        }

        #[test]
        fn oneof_and_vec(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| *x == 1 || *x == 2));
        }

        #[test]
        fn index_resolves(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }
}
