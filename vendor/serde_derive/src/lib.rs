//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` as documentation
//! of intent; nothing serializes through serde at runtime (there is no
//! `serde_json` in the tree). These derives therefore accept the attribute
//! syntax and expand to nothing, which keeps the annotated types compiling
//! without the real (network-fetched) serde machinery.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
